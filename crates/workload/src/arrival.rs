//! Pluggable arrival processes.
//!
//! The paper's Source draws Poisson inter-arrival times; the [`ArrivalProcess`]
//! trait generalizes that to any point process that can be sampled one gap at
//! a time from a caller-owned [`Rng`]. The engine owns one independent
//! `SeedSequence` substream per workload class and threads it through
//! [`ArrivalProcess::next_interarrival`], so every process is deterministic
//! under the master seed and — crucially — [`Poisson`] consumes randomness
//! exactly like the pre-`workload` engine did (one `Rng::exponential` call
//! per arrival), making the refactor bit-for-bit reproducible.
//!
//! Implementations:
//!
//! * [`Poisson`] — the paper's memoryless arrivals.
//! * [`Mmpp`] — a 2-state Markov-modulated Poisson process for bursty
//!   traffic: the arrival rate jumps between a low and a high value at
//!   exponentially distributed epochs.
//! * [`Deterministic`] — fixed inter-arrival gaps (worst-case periodic load).
//! * [`Trace`] — replay of a recorded gap sequence, optionally cycled.

use simkit::{Duration, Rng};

/// A stochastic (or recorded) arrival point process.
///
/// `next_interarrival` returns the gap to the *next* arrival, or `None` when
/// the process emits no further arrivals (zero-rate class, exhausted trace).
/// All randomness comes from the caller's `rng`, so processes themselves stay
/// cheap to construct and trivially deterministic.
pub trait ArrivalProcess: Send {
    /// Sample the gap to the next arrival.
    fn next_interarrival(&mut self, rng: &mut Rng) -> Option<Duration>;

    /// Long-run mean arrival rate in arrivals/second (0 for a dead process).
    fn mean_rate(&self) -> f64;

    /// The index of the process's current hidden regime, when it has one
    /// (MMPP state after the last sampled gap). Ground truth for
    /// experiments on regime-aware adaptation: detectors working from the
    /// miss-ratio series can be checked against the actual switch points.
    fn regime(&self) -> Option<usize> {
        None
    }
}

/// The paper's Poisson process: i.i.d. exponential gaps with rate λ.
#[derive(Clone, Copy, Debug)]
pub struct Poisson {
    rate: f64,
}

impl Poisson {
    /// A Poisson process with rate λ arrivals/second.
    pub fn new(rate: f64) -> Self {
        Poisson { rate }
    }
}

impl ArrivalProcess for Poisson {
    fn next_interarrival(&mut self, rng: &mut Rng) -> Option<Duration> {
        // Guard before sampling: a zero-rate (or nonsensical infinite-rate)
        // class must not consume randomness — the zero-rate early return
        // matches the seed engine's, and an infinite rate would emit
        // zero-length gaps forever, freezing the event calendar.
        if self.rate <= 0.0 || !self.rate.is_finite() {
            return None;
        }
        Some(Duration::from_secs_f64(rng.exponential(self.rate)))
    }

    fn mean_rate(&self) -> f64 {
        self.rate.max(0.0)
    }
}

/// 2-state Markov-modulated Poisson process: bursty arrivals.
///
/// The process holds a hidden CTMC state `s ∈ {0, 1}`; while in state `s`
/// arrivals are Poisson with rate `rates[s]`, and the state flips after an
/// exponential sojourn with rate `switch[s]`. Gaps are sampled by competing
/// exponentials (arrival vs. state flip), so one gap may span several state
/// changes. The process starts in state 0 deterministically.
///
/// Long-run mean rate: with stationary probabilities
/// `π₀ = switch[1] / (switch[0] + switch[1])` (and `π₁ = 1 − π₀`), the
/// average arrival rate is `π₀·rates[0] + π₁·rates[1]`.
#[derive(Clone, Copy, Debug)]
pub struct Mmpp {
    rates: [f64; 2],
    switch: [f64; 2],
    state: usize,
    switches: u64,
}

impl Mmpp {
    /// An MMPP with per-state arrival `rates` and state-exit `switch` rates.
    pub fn new(rates: [f64; 2], switch: [f64; 2]) -> Self {
        Mmpp {
            rates,
            switch,
            state: 0,
            switches: 0,
        }
    }

    /// The hidden CTMC state after the last sampled gap (0 or 1).
    pub fn state(&self) -> usize {
        self.state
    }

    /// State flips performed so far — the ground-truth switch count a
    /// regime-aware policy's detections can be compared against.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// The MMPP with the given long-run `mean_rate` whose high state is
    /// `burst_ratio` times as fast as its low state, symmetric switching
    /// with mean sojourn `sojourn_secs` per state. `burst_ratio = 1`
    /// degenerates to Poisson-distributed gaps.
    pub fn bursty(mean_rate: f64, burst_ratio: f64, sojourn_secs: f64) -> Self {
        let ratio = burst_ratio.max(1.0);
        // π₀ = π₁ = ½ ⇒ mean = (λ_low + λ_high)/2 = λ_low (1 + ratio)/2.
        let low = 2.0 * mean_rate / (1.0 + ratio);
        let s = 1.0 / sojourn_secs.max(f64::MIN_POSITIVE);
        Mmpp::new([low, low * ratio], [s, s])
    }
}

impl ArrivalProcess for Mmpp {
    fn next_interarrival(&mut self, rng: &mut Rng) -> Option<Duration> {
        let mut gap = 0.0;
        loop {
            let lambda = self.rates[self.state].max(0.0);
            let sigma = self.switch[self.state].max(0.0);
            let total = lambda + sigma;
            if total <= 0.0 || !total.is_finite() {
                // Absorbing dead state (no arrival and no way out), or an
                // infinite rate that would stall virtual time.
                return None;
            }
            gap += rng.exponential(total);
            // Competing exponentials: the event is an arrival with
            // probability λ / (λ + σ), otherwise a state flip.
            if rng.next_f64() * total < lambda {
                return Some(Duration::from_secs_f64(gap));
            }
            self.state ^= 1;
            self.switches += 1;
        }
    }

    fn regime(&self) -> Option<usize> {
        Some(self.state)
    }

    fn mean_rate(&self) -> f64 {
        let exit = [self.switch[0].max(0.0), self.switch[1].max(0.0)];
        let denom = exit[0] + exit[1];
        if denom <= 0.0 {
            // No switching: stuck in the start state forever.
            return self.rates[self.state].max(0.0);
        }
        let pi0 = exit[1] / denom;
        pi0 * self.rates[0].max(0.0) + (1.0 - pi0) * self.rates[1].max(0.0)
    }
}

/// Deterministic arrivals: a constant gap of `1/rate` seconds.
#[derive(Clone, Copy, Debug)]
pub struct Deterministic {
    rate: f64,
}

impl Deterministic {
    /// Periodic arrivals at `rate` per second.
    pub fn new(rate: f64) -> Self {
        Deterministic { rate }
    }
}

impl ArrivalProcess for Deterministic {
    fn next_interarrival(&mut self, _rng: &mut Rng) -> Option<Duration> {
        let gap = self.rate.recip();
        // Requires a strictly positive, finite gap: an infinite rate would
        // pin arrivals to one instant and freeze the event calendar.
        if self.rate <= 0.0 || !gap.is_finite() || gap <= 0.0 {
            return None;
        }
        Some(Duration::from_secs_f64(gap))
    }

    fn mean_rate(&self) -> f64 {
        if self.rate.is_finite() {
            self.rate.max(0.0)
        } else {
            0.0
        }
    }
}

/// Replay of a recorded inter-arrival trace.
///
/// Gaps are simulated seconds. With `repeat`, the trace cycles forever;
/// without it, the process dies after the last recorded gap.
#[derive(Clone, Debug)]
pub struct Trace {
    gaps: Vec<f64>,
    next: usize,
    repeat: bool,
}

impl Trace {
    /// Replay `gaps` (seconds); non-finite or negative entries are dropped.
    /// Zero gaps (simultaneous recorded arrivals) are legal in a finite
    /// trace, but a *repeating* trace must advance time each cycle — an
    /// all-zero repeating trace would freeze the event calendar, so it is
    /// treated as dead (no gaps).
    pub fn from_gaps(gaps: Vec<f64>, repeat: bool) -> Self {
        let mut gaps: Vec<f64> = gaps
            .into_iter()
            .filter(|g| g.is_finite() && *g >= 0.0)
            .collect();
        if repeat && gaps.iter().sum::<f64>() <= 0.0 {
            gaps.clear();
        }
        Trace {
            gaps,
            next: 0,
            repeat,
        }
    }

    /// Load a trace from a whitespace-separated text file of gap values;
    /// lines starting with `#` are comments.
    ///
    /// # Errors
    /// Propagates I/O errors; unparsable tokens are an `InvalidData` error.
    pub fn from_file(path: &std::path::Path, repeat: bool) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let mut gaps = Vec::new();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("");
            for tok in line.split_whitespace() {
                let g: f64 = tok.parse().map_err(|_| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad gap value {tok:?} in {}", path.display()),
                    )
                })?;
                gaps.push(g);
            }
        }
        Ok(Trace::from_gaps(gaps, repeat))
    }

    /// Number of (valid) gaps in the trace.
    pub fn len(&self) -> usize {
        self.gaps.len()
    }

    /// True when the trace holds no gaps at all.
    pub fn is_empty(&self) -> bool {
        self.gaps.is_empty()
    }
}

impl ArrivalProcess for Trace {
    fn next_interarrival(&mut self, _rng: &mut Rng) -> Option<Duration> {
        if self.gaps.is_empty() {
            return None;
        }
        if self.next >= self.gaps.len() {
            if !self.repeat {
                return None;
            }
            self.next = 0;
        }
        let gap = self.gaps[self.next];
        self.next += 1;
        Some(Duration::from_secs_f64(gap))
    }

    fn mean_rate(&self) -> f64 {
        let sum: f64 = self.gaps.iter().sum();
        if sum <= 0.0 {
            0.0
        } else {
            self.gaps.len() as f64 / sum
        }
    }
}

/// Declarative arrival-process configuration: the `Clone`-able description
/// that lives in a workload class, from which the engine builds one process
/// instance per run.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalSpec {
    /// Poisson with rate λ — the paper's model.
    Poisson {
        /// Arrival rate in queries/second.
        rate: f64,
    },
    /// 2-state MMPP (bursty traffic).
    Mmpp {
        /// Arrival rate while in state 0 / state 1.
        rates: [f64; 2],
        /// Exit rate out of state 0 / state 1 (1 ÷ mean sojourn seconds).
        switch: [f64; 2],
    },
    /// Constant inter-arrival gaps.
    Deterministic {
        /// Arrival rate in queries/second.
        rate: f64,
    },
    /// Replay of a recorded gap sequence (seconds).
    Trace {
        /// The gaps to replay.
        gaps: Vec<f64>,
        /// Cycle the trace instead of stopping at its end.
        repeat: bool,
    },
}

impl ArrivalSpec {
    /// Poisson shorthand — the overwhelmingly common case.
    pub fn poisson(rate: f64) -> Self {
        ArrivalSpec::Poisson { rate }
    }

    /// Bursty MMPP shorthand: see [`Mmpp::bursty`].
    pub fn bursty(mean_rate: f64, burst_ratio: f64, sojourn_secs: f64) -> Self {
        let m = Mmpp::bursty(mean_rate, burst_ratio, sojourn_secs);
        ArrivalSpec::Mmpp {
            rates: m.rates,
            switch: m.switch,
        }
    }

    /// Instantiate the process this spec describes.
    pub fn build(&self) -> Box<dyn ArrivalProcess> {
        match self {
            ArrivalSpec::Poisson { rate } => Box::new(Poisson::new(*rate)),
            ArrivalSpec::Mmpp { rates, switch } => Box::new(Mmpp::new(*rates, *switch)),
            ArrivalSpec::Deterministic { rate } => Box::new(Deterministic::new(*rate)),
            ArrivalSpec::Trace { gaps, repeat } => {
                Box::new(Trace::from_gaps(gaps.clone(), *repeat))
            }
        }
    }

    /// Long-run mean arrival rate of the described process (closed form —
    /// no process is instantiated).
    pub fn mean_rate(&self) -> f64 {
        match self {
            ArrivalSpec::Poisson { rate } => Poisson::new(*rate).mean_rate(),
            ArrivalSpec::Mmpp { rates, switch } => Mmpp::new(*rates, *switch).mean_rate(),
            ArrivalSpec::Deterministic { rate } => Deterministic::new(*rate).mean_rate(),
            ArrivalSpec::Trace { gaps, .. } => {
                let (count, sum) = gaps
                    .iter()
                    .filter(|g| g.is_finite() && **g >= 0.0)
                    .fold((0u64, 0.0), |(c, s), g| (c + 1, s + g));
                if sum <= 0.0 {
                    0.0
                } else {
                    count as f64 / sum
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SeedSequence;

    #[test]
    fn poisson_consumes_rng_exactly_like_the_seed_engine() {
        // The pre-`workload` engine sampled `rng.exponential(rate)` per
        // arrival from `substream("arrival", class)`. The Poisson process
        // must be bit-for-bit identical on the same stream.
        let seeds = SeedSequence::new(1994);
        let mut direct = seeds.substream("arrival", 0);
        let mut through = seeds.substream("arrival", 0);
        let mut p = Poisson::new(0.06);
        for _ in 0..10_000 {
            let want = Duration::from_secs_f64(direct.exponential(0.06));
            let got = p.next_interarrival(&mut through).expect("live process");
            assert_eq!(got, want);
        }
    }

    #[test]
    fn zero_rate_poisson_emits_nothing_and_consumes_nothing() {
        let mut rng = Rng::new(7);
        let before = rng.clone().next_u64();
        assert!(Poisson::new(0.0).next_interarrival(&mut rng).is_none());
        assert!(Poisson::new(-1.0).next_interarrival(&mut rng).is_none());
        assert_eq!(rng.next_u64(), before, "no randomness consumed");
    }

    #[test]
    fn mmpp_mean_rate_closed_form() {
        let m = Mmpp::new([0.02, 0.20], [1.0 / 300.0, 1.0 / 100.0]);
        // π₀ = (1/100) / (1/300 + 1/100) = 0.75.
        let want = 0.75 * 0.02 + 0.25 * 0.20;
        assert!((m.mean_rate() - want).abs() < 1e-12);
        // Symmetric switching: mean of the two rates.
        let s = Mmpp::bursty(0.06, 4.0, 600.0);
        assert!((s.mean_rate() - 0.06).abs() < 1e-12);
    }

    #[test]
    fn mmpp_without_switching_is_stuck_in_state_zero() {
        let m = Mmpp::new([0.05, 5.0], [0.0, 0.0]);
        assert!((m.mean_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn mmpp_dead_state_terminates() {
        let mut m = Mmpp::new([0.0, 0.0], [0.0, 0.0]);
        assert!(m.next_interarrival(&mut Rng::new(1)).is_none());
    }

    #[test]
    fn mmpp_exposes_regime_hints() {
        let mut m = Mmpp::bursty(0.06, 16.0, 100.0);
        assert_eq!(m.regime(), Some(0), "starts in state 0");
        assert_eq!(m.switches(), 0);
        // Poisson has no hidden regime.
        assert_eq!(Poisson::new(0.06).regime(), None);
        // Short sojourns: a few hundred gaps must cross several switches,
        // and the reported state must track the flips.
        let mut rng = Rng::new(42);
        let mut seen_states = std::collections::BTreeSet::new();
        for _ in 0..300 {
            m.next_interarrival(&mut rng).expect("live process");
            seen_states.insert(m.state());
            assert_eq!(m.regime(), Some(m.state()));
        }
        assert!(m.switches() > 0, "state must flip over 300 gaps");
        assert_eq!(seen_states.len(), 2, "both states visited");
    }

    #[test]
    fn deterministic_gaps_are_constant() {
        let mut d = Deterministic::new(0.25);
        let mut rng = Rng::new(3);
        for _ in 0..5 {
            assert_eq!(d.next_interarrival(&mut rng), Some(Duration::from_secs(4)));
        }
        assert!(Deterministic::new(0.0)
            .next_interarrival(&mut rng)
            .is_none());
    }

    #[test]
    fn trace_replays_then_stops_or_cycles() {
        let mut rng = Rng::new(1);
        let mut once = Trace::from_gaps(vec![1.0, 2.0], false);
        assert_eq!(
            once.next_interarrival(&mut rng),
            Some(Duration::from_secs(1))
        );
        assert_eq!(
            once.next_interarrival(&mut rng),
            Some(Duration::from_secs(2))
        );
        assert!(once.next_interarrival(&mut rng).is_none());

        let mut cyc = Trace::from_gaps(vec![1.0, 2.0], true);
        for _ in 0..3 {
            assert_eq!(
                cyc.next_interarrival(&mut rng),
                Some(Duration::from_secs(1))
            );
            assert_eq!(
                cyc.next_interarrival(&mut rng),
                Some(Duration::from_secs(2))
            );
        }
        // Mean rate = 2 gaps / 3 seconds.
        assert!((cyc.mean_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn trace_drops_invalid_gaps() {
        let t = Trace::from_gaps(vec![1.0, f64::NAN, -3.0, 2.0], false);
        assert_eq!(t.len(), 2);
        assert!(Trace::from_gaps(vec![], true).is_empty());
    }

    #[test]
    fn degenerate_processes_cannot_freeze_virtual_time() {
        let mut rng = Rng::new(9);
        // All-zero repeating trace would emit 0-gaps forever: dead instead.
        let mut t = Trace::from_gaps(vec![0.0, 0.0], true);
        assert!(t.next_interarrival(&mut rng).is_none());
        // A finite trace may contain zero gaps (simultaneous arrivals).
        let mut f = Trace::from_gaps(vec![0.0, 1.0], false);
        assert_eq!(f.next_interarrival(&mut rng), Some(Duration::ZERO));
        // Infinite rates would also pin arrivals to one instant.
        assert!(Deterministic::new(f64::INFINITY)
            .next_interarrival(&mut rng)
            .is_none());
        assert!(Poisson::new(f64::INFINITY)
            .next_interarrival(&mut rng)
            .is_none());
        assert!(Mmpp::new([f64::INFINITY, 1.0], [1.0, 1.0])
            .next_interarrival(&mut rng)
            .is_none());
    }

    #[test]
    fn trace_from_file_parses_and_rejects() {
        let dir = std::env::temp_dir();
        let path = dir.join("workload_trace_test.txt");
        std::fs::write(&path, "# recorded gaps\n0.5 1.5\n2.5 # tail comment\n")
            .expect("write temp trace");
        let t = Trace::from_file(&path, false).expect("parse");
        assert_eq!(t.len(), 3);
        std::fs::write(&path, "0.5 bogus\n").expect("write temp trace");
        assert!(Trace::from_file(&path, false).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn spec_builds_matching_processes() {
        let mut rng_a = Rng::new(11);
        let mut rng_b = Rng::new(11);
        let mut from_spec = ArrivalSpec::poisson(0.1).build();
        let mut direct = Poisson::new(0.1);
        for _ in 0..100 {
            assert_eq!(
                from_spec.next_interarrival(&mut rng_a),
                direct.next_interarrival(&mut rng_b)
            );
        }
        assert!((ArrivalSpec::bursty(0.06, 9.0, 600.0).mean_rate() - 0.06).abs() < 1e-12);
        assert_eq!(ArrivalSpec::poisson(0.05).mean_rate(), 0.05);
    }

    #[test]
    fn spec_mean_rate_matches_built_process() {
        // The closed-form spec rate must agree with the instantiated
        // process, including the trace filter for invalid gaps.
        for spec in [
            ArrivalSpec::poisson(0.07),
            ArrivalSpec::bursty(0.05, 12.0, 300.0),
            ArrivalSpec::Deterministic { rate: 0.2 },
            ArrivalSpec::Trace {
                gaps: vec![1.0, f64::NAN, 2.0, -1.0],
                repeat: true,
            },
        ] {
            assert_eq!(spec.mean_rate(), spec.build().mean_rate(), "{spec:?}");
        }
    }
}
