//! Multi-tenant workload partitions.
//!
//! A tenant names a slice of the buffer pool: classes reference tenants by
//! index ([`crate::WorkloadClass::tenant`]) and a partition-aware memory
//! policy turns the quota list into per-partition allocation budgets. The
//! spec lives here — enforcement belongs to the policy layer (`pmm`), which
//! keeps this crate dependency-free above `simkit`.

/// One tenant's memory contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantSpec {
    /// Label for reports ("analytics", "reporting", ...).
    pub name: String,
    /// Pages of the buffer pool reserved for this tenant.
    pub quota_pages: u32,
    /// Soft quota: the tenant may borrow pages other tenants leave idle
    /// (and hands them back as soon as the owner's demand returns). A hard
    /// quota (`false`) is a strict ceiling.
    pub soft: bool,
}

impl TenantSpec {
    /// A hard-quota tenant.
    pub fn hard(name: &str, quota_pages: u32) -> Self {
        TenantSpec {
            name: name.into(),
            quota_pages,
            soft: false,
        }
    }

    /// A soft-quota tenant (may borrow idle pages).
    pub fn soft(name: &str, quota_pages: u32) -> Self {
        TenantSpec {
            name: name.into(),
            quota_pages,
            soft: true,
        }
    }
}

/// Split `total` pages across `fractions` (which should sum to ≤ 1); the
/// last tenant absorbs rounding so quotas always sum to exactly
/// `min(total, Σ fᵢ·total)` — convenient for "70/30 split" style scenarios.
pub fn quota_split(total: u32, fractions: &[f64]) -> Vec<u32> {
    let mut quotas: Vec<u32> = fractions
        .iter()
        .map(|f| (f.clamp(0.0, 1.0) * total as f64).floor() as u32)
        .collect();
    let sum: u64 = quotas.iter().map(|&q| q as u64).sum();
    if sum > total as u64 {
        // Over-subscribed by rounding: trim the last non-zero quota.
        let excess = (sum - total as u64) as u32;
        if let Some(last) = quotas.iter_mut().rev().find(|q| **q > 0) {
            *last = last.saturating_sub(excess);
        }
    }
    quotas
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let h = TenantSpec::hard("a", 1000);
        assert!(!h.soft);
        let s = TenantSpec::soft("b", 500);
        assert!(s.soft);
        assert_eq!(s.quota_pages, 500);
    }

    #[test]
    fn quota_split_covers_total() {
        assert_eq!(quota_split(2560, &[0.5, 0.5]), vec![1280, 1280]);
        let q = quota_split(2561, &[0.5, 0.5]);
        assert!(q.iter().map(|&x| x as u64).sum::<u64>() <= 2561);
        // Fractions clamp.
        assert_eq!(quota_split(100, &[2.0]), vec![100]);
        assert_eq!(quota_split(100, &[-1.0]), vec![0]);
    }
}
