//! Workload classes (Table 2) and the alternation schedule of Section 5.3.
//!
//! These types used to live inline in `rtdbs::config`; they moved here so
//! that scenario generation is owned end-to-end by the `workload` crate and
//! the engine merely consumes it.

use crate::arrival::ArrivalSpec;

/// What kind of queries a workload class issues (Table 2, `QueryType_j`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryType {
    /// Hash joins: one relation drawn from each listed group; the smaller
    /// becomes the inner (build) relation R.
    HashJoin {
        /// The two operand relation groups (`RelGroup_j`).
        groups: (u32, u32),
    },
    /// External sorts over one relation from `group`.
    ExternalSort {
        /// The operand relation group.
        group: u32,
    },
}

/// One workload class (Table 2), generalized: arrivals come from any
/// [`ArrivalSpec`] and the class may belong to a named tenant.
#[derive(Clone, Debug)]
pub struct WorkloadClass {
    /// Label for reports ("Medium", "Small", ...).
    pub name: String,
    /// Join or sort, and over which relation groups.
    pub query_type: QueryType,
    /// The arrival process this class's queries follow.
    pub arrival: ArrivalSpec,
    /// `SRInterval_j` — slack ratios drawn uniformly from this range.
    pub slack_range: (f64, f64),
    /// Index into the scenario's tenant list (0 when single-tenant).
    pub tenant: usize,
}

impl WorkloadClass {
    /// The paper's shape: Poisson arrivals, tenant 0.
    pub fn poisson(
        name: &str,
        query_type: QueryType,
        rate: f64,
        slack_range: (f64, f64),
    ) -> Self {
        WorkloadClass {
            name: name.into(),
            query_type,
            arrival: ArrivalSpec::poisson(rate),
            slack_range,
            tenant: 0,
        }
    }

    /// Long-run mean arrival rate of this class.
    pub fn mean_rate(&self) -> f64 {
        self.arrival.mean_rate()
    }

    /// Assign the class to a tenant (builder style).
    pub fn for_tenant(mut self, tenant: usize) -> Self {
        self.tenant = tenant;
        self
    }
}

/// Alternating-workload schedule (Section 5.3): phase `i` lasts
/// `phases[i].0` seconds with only the listed classes active; the schedule
/// repeats cyclically. An empty schedule means every class is always active.
#[derive(Clone, Debug, Default)]
pub struct AlternationSchedule {
    /// `(duration_secs, active class indices)` per phase.
    pub phases: Vec<(f64, Vec<usize>)>,
}

impl AlternationSchedule {
    /// Build a cyclic schedule from `(duration_secs, classes)` phases.
    pub fn cycle(phases: Vec<(f64, Vec<usize>)>) -> Self {
        AlternationSchedule { phases }
    }

    /// The active class list of the phase covering simulated second `t`,
    /// or `None` when the schedule is empty (= everything active). This is
    /// the allocation-free lookup the engine's per-arrival hot path uses.
    pub fn phase_at(&self, t: f64) -> Option<&[usize]> {
        if self.phases.is_empty() {
            return None;
        }
        let cycle: f64 = self.phases.iter().map(|p| p.0).sum();
        let mut offset = if cycle > 0.0 { t % cycle } else { 0.0 };
        for (len, classes) in &self.phases {
            if offset < *len {
                return Some(classes);
            }
            offset -= len;
        }
        Some(&self.phases.last().expect("non-empty").1)
    }

    /// Which classes are active at simulated second `t`. Allocates; use
    /// [`AlternationSchedule::is_active`] or
    /// [`AlternationSchedule::phase_at`] on hot paths.
    pub fn active_at(&self, t: f64, num_classes: usize) -> Vec<usize> {
        match self.phase_at(t) {
            Some(classes) => classes.to_vec(),
            None => (0..num_classes).collect(),
        }
    }

    /// True if `class` is active at `t`. Allocation-free.
    pub fn is_active(&self, t: f64, class: usize, num_classes: usize) -> bool {
        match self.phase_at(t) {
            Some(classes) => classes.contains(&class),
            None => class < num_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_means_always_active() {
        let s = AlternationSchedule::default();
        assert_eq!(s.active_at(12_345.0, 3), vec![0, 1, 2]);
        assert!(s.is_active(0.0, 2, 3));
        assert!(!s.is_active(0.0, 3, 3), "class index out of range");
        assert!(s.phase_at(999.0).is_none());
    }

    #[test]
    fn schedule_cycles() {
        let s = AlternationSchedule::cycle(vec![(100.0, vec![0]), (50.0, vec![1])]);
        assert_eq!(s.active_at(10.0, 2), vec![0]);
        assert_eq!(s.active_at(120.0, 2), vec![1]);
        // Wraps: 160 ≡ 10 (mod 150).
        assert_eq!(s.active_at(160.0, 2), vec![0]);
        assert!(!s.is_active(120.0, 0, 2));
    }

    #[test]
    fn phase_at_borrows_without_allocating() {
        let s = AlternationSchedule::cycle(vec![(100.0, vec![0, 2])]);
        let classes = s.phase_at(50.0).expect("in phase");
        assert_eq!(classes, &[0, 2]);
        // Degenerate zero-length cycle still answers.
        let z = AlternationSchedule::cycle(vec![(0.0, vec![1])]);
        assert_eq!(z.phase_at(5.0), Some(&[1][..]));
    }

    #[test]
    fn class_helpers() {
        let c = WorkloadClass::poisson(
            "Medium",
            QueryType::HashJoin { groups: (0, 1) },
            0.06,
            (2.5, 7.5),
        )
        .for_tenant(1);
        assert_eq!(c.tenant, 1);
        assert!((c.mean_rate() - 0.06).abs() < 1e-12);
    }
}
