//! `workload` — scenario generation for the RTDBS simulator.
//!
//! The paper's Source hardcodes Poisson single-tenant arrivals; this crate
//! makes workload generation its own subsystem, the way real engines
//! separate transaction/workload drivers from the execution core:
//!
//! * [`arrival`] — the [`ArrivalProcess`] trait with [`Poisson`] (the
//!   paper's model, bit-for-bit compatible with the pre-refactor engine),
//!   bursty 2-state [`Mmpp`], [`Deterministic`], and recorded-[`Trace`]
//!   processes, all driven by caller-owned `simkit` RNG streams.
//! * [`class`] — [`QueryType`] / [`WorkloadClass`] (Table 2) and the
//!   cyclic [`AlternationSchedule`] (Section 5.3), with an allocation-free
//!   hot-path lookup.
//! * [`scenario`] — [`Scenario`]: a named composition of class mixes
//!   (join-heavy, sort-heavy, mixed join+sort), a schedule, and tenants.
//! * [`tenant`] — [`TenantSpec`] memory partitions; enforcement lives in
//!   `pmm`'s partitioned allocator.
//!
//! Everything is deterministic under `simkit::SeedSequence`: processes only
//! draw randomness from the `Rng` handed to them, so one independent stream
//! per class keeps runs reproducible and components isolated.

pub mod arrival;
pub mod class;
pub mod scenario;
pub mod tenant;

pub use arrival::{ArrivalProcess, ArrivalSpec, Deterministic, Mmpp, Poisson, Trace};
pub use class::{AlternationSchedule, QueryType, WorkloadClass};
pub use scenario::Scenario;
pub use tenant::{quota_split, TenantSpec};
