//! The scenario layer: a named composition of workload classes, an
//! alternation schedule, and tenant memory partitions.
//!
//! A [`Scenario`] is everything the Source needs that is *not* physical
//! resources or the database layout — those stay in the simulator's config,
//! which applies a scenario on top (`SimConfig::apply_scenario` in `rtdbs`).
//! Builders cover the recurring shapes: join-heavy, sort-heavy, and mixed
//! join+sort class mixes, each under any [`ArrivalSpec`].

use crate::arrival::ArrivalSpec;
use crate::class::{AlternationSchedule, QueryType, WorkloadClass};
use crate::tenant::TenantSpec;

/// A complete workload scenario.
#[derive(Clone, Debug, Default)]
pub struct Scenario {
    /// Label for reports.
    pub name: String,
    /// The query classes the Source interleaves.
    pub classes: Vec<WorkloadClass>,
    /// Optional class-alternation schedule (empty = all always active).
    pub schedule: AlternationSchedule,
    /// Tenant memory partitions (empty = single implicit tenant).
    pub tenants: Vec<TenantSpec>,
}

impl Scenario {
    /// An empty scenario to compose onto.
    pub fn named(name: &str) -> Self {
        Scenario {
            name: name.into(),
            ..Scenario::default()
        }
    }

    /// Append a class (builder style).
    pub fn class(mut self, class: WorkloadClass) -> Self {
        self.classes.push(class);
        self
    }

    /// Append a tenant (builder style).
    pub fn tenant(mut self, tenant: TenantSpec) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// Install a cyclic alternation schedule (builder style).
    pub fn alternating(mut self, phases: Vec<(f64, Vec<usize>)>) -> Self {
        self.schedule = AlternationSchedule::cycle(phases);
        self
    }

    /// One hash-join class over `groups` under `arrival` — the paper's
    /// baseline shape with a pluggable arrival process.
    pub fn join_heavy(groups: (u32, u32), arrival: ArrivalSpec) -> Self {
        Scenario::named("join-heavy").class(WorkloadClass {
            name: "Join".into(),
            query_type: QueryType::HashJoin { groups },
            arrival,
            slack_range: (2.5, 7.5),
            tenant: 0,
        })
    }

    /// One external-sort class over `group` under `arrival`.
    pub fn sort_heavy(group: u32, arrival: ArrivalSpec) -> Self {
        Scenario::named("sort-heavy").class(WorkloadClass {
            name: "Sort".into(),
            query_type: QueryType::ExternalSort { group },
            arrival,
            slack_range: (2.5, 7.5),
            tenant: 0,
        })
    }

    /// A mixed join+sort scenario: both classes always active, each with
    /// its own arrival process.
    pub fn mixed(
        join_groups: (u32, u32),
        join_arrival: ArrivalSpec,
        sort_group: u32,
        sort_arrival: ArrivalSpec,
    ) -> Self {
        let mut s = Scenario::join_heavy(join_groups, join_arrival);
        s.name = "mixed".into();
        s.class(WorkloadClass {
            name: "Sort".into(),
            query_type: QueryType::ExternalSort { group: sort_group },
            arrival: sort_arrival,
            slack_range: (2.5, 7.5),
            tenant: 0,
        })
    }

    /// Parameterized tenant grid for the scale experiments: `n` identical
    /// soft-quota tenants (`t0` … `t{n-1}`, `quota_pages` each), each with
    /// one Poisson class of `query_type` at `rate` billed to it — so a
    /// 10³-tenant configuration is one call, not 10³ literals.
    pub fn tenant_grid(
        n: usize,
        query_type: QueryType,
        rate: f64,
        quota_pages: u32,
    ) -> Self {
        let mut s = Scenario::named("tenant-grid");
        for i in 0..n {
            s.classes.push(
                WorkloadClass::poisson(&format!("T{i}"), query_type, rate, (2.5, 7.5))
                    .for_tenant(i),
            );
            s.tenants
                .push(TenantSpec::soft(&format!("t{i}"), quota_pages));
        }
        s
    }

    /// Total long-run arrival rate across classes (ignoring alternation).
    pub fn mean_rate(&self) -> f64 {
        self.classes.iter().map(WorkloadClass::mean_rate).sum()
    }

    /// Sum of tenant quotas in pages.
    pub fn quota_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.quota_pages as u64).sum()
    }

    /// Internal consistency: class tenant indices must reference declared
    /// tenants (when any are declared).
    ///
    /// # Errors
    /// Describes the first out-of-range tenant reference.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants.is_empty() {
            return Ok(());
        }
        for c in &self.classes {
            if c.tenant >= self.tenants.len() {
                return Err(format!(
                    "class {:?} references tenant {} but only {} tenants declared",
                    c.name,
                    c.tenant,
                    self.tenants.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let s = Scenario::mixed(
            (0, 1),
            ArrivalSpec::bursty(0.04, 8.0, 600.0),
            0,
            ArrivalSpec::poisson(0.02),
        )
        .tenant(TenantSpec::hard("joins", 1500))
        .tenant(TenantSpec::soft("sorts", 1000));
        assert_eq!(s.classes.len(), 2);
        assert_eq!(s.tenants.len(), 2);
        assert_eq!(s.quota_total(), 2500);
        assert!((s.mean_rate() - 0.06).abs() < 1e-12);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validate_catches_dangling_tenant() {
        let s = Scenario::join_heavy((0, 1), ArrivalSpec::poisson(0.05))
            .class(
                WorkloadClass::poisson(
                    "Stray",
                    QueryType::ExternalSort { group: 0 },
                    0.01,
                    (2.5, 7.5),
                )
                .for_tenant(3),
            )
            .tenant(TenantSpec::hard("only", 2560));
        assert!(s.validate().unwrap_err().contains("tenant 3"));
    }

    #[test]
    fn alternating_schedule_installs() {
        let s = Scenario::join_heavy((0, 1), ArrivalSpec::poisson(0.05))
            .alternating(vec![(100.0, vec![0])]);
        assert!(s.schedule.is_active(50.0, 0, 1));
    }
}
