//! Cross-crate checks of the allocation policies against the operators'
//! real memory demands.

// The deprecated allocating wrappers stay covered until their removal;
// production callers use the `*_allocate_into` forms.
#![allow(deprecated)]

use pmm_core::pmm::{max_allocate, minmax_allocate, proportional_allocate};
use pmm_core::pmm::{QueryDemand, QueryId};
use pmm_core::prelude::*;
use pmm_core::storage::FileId;

fn demands_from_operators(n: u64) -> Vec<QueryDemand> {
    let cfg = ExecConfig::default();
    (0..n)
        .map(|i| {
            let r = 600 + (i as u32 * 97) % 1200; // ‖R‖ ∈ [600, 1800]
            let join =
                HashJoin::new(cfg, FileId::Relation(0), r, FileId::Relation(1), 5 * r);
            QueryDemand {
                id: QueryId(i),
                deadline: SimTime::from_secs(100 + i),
                max_mem: join.max_memory(),
                min_mem: join.min_memory(),
                tenant: 0,
            }
        })
        .collect()
}

#[test]
fn demands_match_paper_formulas() {
    let cfg = ExecConfig::default();
    let join = HashJoin::new(cfg, FileId::Relation(0), 1200, FileId::Relation(1), 6000);
    assert_eq!(join.max_memory(), 1321); // F·‖R‖ + 1 with F = 1.1
    assert_eq!(join.min_memory(), 37); // √(F·‖R‖) + 1
    let sort = ExternalSort::new(cfg, FileId::Relation(0), 1200);
    assert_eq!(sort.max_memory(), 1200);
    assert_eq!(sort.min_memory(), 3);
}

#[test]
fn all_policies_respect_memory_and_bounds() {
    let demands = demands_from_operators(40);
    for m in [500u32, 2560, 10_000, 100_000] {
        for grants in [
            max_allocate(&demands, m),
            minmax_allocate(&demands, m, None),
            minmax_allocate(&demands, m, Some(10)),
            proportional_allocate(&demands, m, None),
        ] {
            let total: u64 = grants.iter().map(|&(_, p)| p as u64).sum();
            assert!(total <= m as u64, "over-allocated {total} of {m}");
            for (id, pages) in grants {
                let d = demands
                    .iter()
                    .find(|d| d.id == id)
                    .expect("granted a real query");
                assert!(pages >= d.min_mem, "grant below minimum");
                assert!(pages <= d.max_mem, "grant above maximum");
            }
        }
    }
}

#[test]
fn minmax_gives_urgent_queries_their_maximum() {
    let demands = demands_from_operators(20);
    let grants = minmax_allocate(&demands, 2560, None);
    // The earliest-deadline query is demands[0] (deadline 100).
    let first = grants
        .iter()
        .find(|&&(id, _)| id == QueryId(0))
        .expect("admitted");
    assert_eq!(first.1, demands[0].max_mem, "highest priority gets its max");
}

#[test]
fn operators_accept_any_grant_from_policies() {
    // Whatever a policy grants, the operator must accept (0 or ≥ min).
    let demands = demands_from_operators(30);
    let grants = minmax_allocate(&demands, 2560, None);
    let cfg = ExecConfig::default();
    for (id, pages) in grants {
        let r = 600 + (id.0 as u32 * 97) % 1200;
        let mut join =
            HashJoin::new(cfg, FileId::Relation(0), r, FileId::Relation(1), 5 * r);
        join.set_allocation(pages); // must not panic
        assert_eq!(join.allocation(), pages);
    }
}
