//! End-to-end behaviour of the full simulator: the paper's qualitative
//! claims on small-but-real runs.

use integration_tests::short_baseline;
use pmm_core::prelude::*;

#[test]
fn baseline_ordering_minmax_beats_max_under_load() {
    // Section 5.1's headline: with memory as the bottleneck, MinMax's
    // liberal admission beats Max's conservative one.
    let max = run_simulation(short_baseline(0.06, 3_000.0), Box::new(MaxPolicy));
    let minmax = run_simulation(
        short_baseline(0.06, 3_000.0),
        Box::new(pmm_core::pmm::MinMaxPolicy::unlimited()),
    );
    assert!(
        minmax.miss_pct() < max.miss_pct(),
        "MinMax {:.1}% must beat Max {:.1}%",
        minmax.miss_pct(),
        max.miss_pct()
    );
    // And it does so by admitting more queries, not by luck.
    assert!(minmax.avg_mpl > 1.5 * max.avg_mpl);
    // Max's admission queue shows up as waiting time; MinMax's does not.
    assert!(max.timings.waiting > 10.0 * minmax.timings.waiting.max(0.1));
}

#[test]
fn proportional_is_worse_than_minmax() {
    // Corn89/Yu93's result, reproduced in Figure 3: same admission, worse
    // memory division.
    let minmax = run_simulation(
        short_baseline(0.06, 3_000.0),
        Box::new(pmm_core::pmm::MinMaxPolicy::unlimited()),
    );
    let prop = run_simulation(
        short_baseline(0.06, 3_000.0),
        Box::new(ProportionalPolicy::unlimited()),
    );
    // On short horizons the miss ratios can tie; Proportional must never
    // come out ahead (the 10-hour sweeps in EXPERIMENTS.md show the full
    // gap).
    assert!(
        prop.miss_pct() >= minmax.miss_pct(),
        "Proportional {:.1}% vs MinMax {:.1}%",
        prop.miss_pct(),
        minmax.miss_pct()
    );
    assert!(
        prop.timings.execution > minmax.timings.execution,
        "equal shares inflate execution times"
    );
    // Proportional redistributes on every arrival/departure: far more
    // allocation churn per query (Figure 7).
    assert!(prop.avg_fluctuations > 2.0 * minmax.avg_fluctuations);
}

#[test]
fn disk_contention_flips_the_ordering() {
    // Section 5.2: with 6 disks, MinMax's unrestrained admission thrashes
    // the disks; an MPL-limited MinMax-N does better.
    let mut unrestrained = SimConfig::disk_contention(0.06);
    unrestrained.duration_secs = 3_000.0;
    let minmax = run_simulation(
        unrestrained,
        Box::new(pmm_core::pmm::MinMaxPolicy::unlimited()),
    );
    let mut limited = SimConfig::disk_contention(0.06);
    limited.duration_secs = 3_000.0;
    let minmax_n = run_simulation(
        limited,
        Box::new(pmm_core::pmm::MinMaxPolicy::with_limit(2)),
    );
    assert!(
        minmax_n.miss_pct() < minmax.miss_pct(),
        "bounded MPL {:.1}% must beat unbounded {:.1}% under disk contention",
        minmax_n.miss_pct(),
        minmax.miss_pct()
    );
    assert!(
        minmax.disk_util > minmax_n.disk_util,
        "thrashing shows in disk util"
    );
}

#[test]
fn sort_workload_properties() {
    // Section 5.5 context: sorts place a much lighter disk load per page of
    // memory demand than joins. Our model reproduces that resource profile
    // (the Figure 16 ordering itself diverges — see EXPERIMENTS.md): MinMax
    // admits far more sorts than Max, and Max queues them instead.
    let mut sort_cfg = SimConfig::sorts(0.20);
    sort_cfg.duration_secs = 3_000.0;
    let max = run_simulation(sort_cfg.clone(), Box::new(MaxPolicy));
    let minmax =
        run_simulation(sort_cfg, Box::new(pmm_core::pmm::MinMaxPolicy::unlimited()));
    assert!(
        minmax.avg_mpl > 2.0 * max.avg_mpl,
        "MinMax admits more sorts"
    );
    assert!(
        max.timings.waiting > minmax.timings.waiting,
        "Max queues sorts"
    );
    // Sorts at reduced allocations do strictly more I/O.
    assert!(minmax.disk_util > max.disk_util);
}

#[test]
fn report_invariants_hold() {
    let r = run_simulation(
        short_baseline(0.05, 2_000.0),
        Box::new(Pmm::with_defaults()),
    );
    assert!(r.missed <= r.served);
    assert!((0.0..=1.0).contains(&r.cpu_util));
    assert!((0.0..=1.0).contains(&r.disk_util));
    assert!(r.avg_mpl >= 0.0);
    let class_served: u64 = r.classes.iter().map(|c| c.served).sum();
    assert_eq!(class_served, r.served);
    let window_served: u64 = r.windows.iter().map(|w| w.served).sum();
    assert_eq!(window_served, r.served);
    assert!(r.timings.response >= r.timings.execution);
}
