//! PMM's adaptive behaviour on full simulations: strategy switching,
//! convergence, and workload-change detection.

use integration_tests::short_baseline;
use pmm_core::pmm::StrategyMode;
use pmm_core::prelude::*;

#[test]
fn pmm_switches_to_minmax_on_memory_bound_baseline() {
    // Memory-bound, under-utilized disks, misses present: all four switch
    // conditions of Section 3.2 eventually hold.
    let r = run_simulation(
        short_baseline(0.06, 6_000.0),
        Box::new(Pmm::with_defaults()),
    );
    assert!(
        r.trace.iter().any(|p| p.mode == StrategyMode::MinMax),
        "PMM must leave Max mode on the baseline; trace: {:?}",
        r.trace
    );
}

#[test]
fn pmm_tracks_the_better_static_policy_on_the_baseline() {
    let secs = 9_000.0;
    let pmm = run_simulation(short_baseline(0.05, secs), Box::new(Pmm::with_defaults()));
    let max = run_simulation(short_baseline(0.05, secs), Box::new(MaxPolicy));
    let minmax = run_simulation(
        short_baseline(0.05, secs),
        Box::new(pmm_core::pmm::MinMaxPolicy::unlimited()),
    );
    let best = max.miss_pct().min(minmax.miss_pct());
    let worst = max.miss_pct().max(minmax.miss_pct());
    // PMM needs the first Max-mode batches to learn, so allow slack, but it
    // must land far closer to the better policy than to the worse one.
    assert!(
        pmm.miss_pct() <= (best + worst) / 2.0,
        "PMM {:.1}% vs best {best:.1}% / worst {worst:.1}%",
        pmm.miss_pct()
    );
}

#[test]
fn pmm_detects_workload_changes() {
    let mut cfg = SimConfig::workload_changes();
    // Two phases are enough to see a restart.
    cfg.duration_secs = 26_000.0;
    let r = run_simulation(cfg, Box::new(Pmm::with_defaults()));
    // The phase switch at t = 9000 s (Medium → Small) must show up as a
    // restart (a Max-mode trace point) after that time.
    assert!(
        r.trace
            .iter()
            .any(|p| p.at.as_secs_f64() > 9_000.0 && p.mode == StrategyMode::Max),
        "no restart after the workload switch; trace: {:?}",
        r.trace
    );
}

#[test]
fn util_low_setting_barely_matters() {
    // Section 5.4: PMM is insensitive to UtilLow because the RU heuristic
    // only steers the very first MinMax batches.
    let mut results = Vec::new();
    for util_low in [0.5, 0.8] {
        let params = pmm_core::pmm::PmmParams {
            util_low,
            ..Default::default()
        };
        let r = run_simulation(short_baseline(0.05, 6_000.0), Box::new(Pmm::new(params)));
        results.push(r.miss_pct());
    }
    let spread = (results[0] - results[1]).abs();
    assert!(
        spread < 12.0,
        "UtilLow ∈ {{0.5, 0.8}} changed the miss ratio by {spread:.1} points: {results:?}"
    );
}

#[test]
fn pmm_trace_is_monotonic_in_time() {
    let r = run_simulation(
        short_baseline(0.06, 5_000.0),
        Box::new(Pmm::with_defaults()),
    );
    for pair in r.trace.windows(2) {
        assert!(pair[0].at <= pair[1].at, "trace must be time-ordered");
    }
}
