//! Differential pin for the analytic fast-forward path.
//!
//! The engine drives operators two ways: the batched run protocol with
//! closed-form descriptor planning (`SimConfig::fastforward = true`, the
//! production default) and the single-step reference path (`false`), which
//! re-enters the operator state machine once per action. The two are
//! promised *bit-identical* — not statistically close: every simulated
//! event lands at the same tick with the same payload, every f64
//! accumulator walks the same association order.
//!
//! This harness pins that promise property-style: randomized `SimConfig`s
//! (presets, arrival rates, seeds, policies, feedback batch sizes — which
//! move the allocation-interruption offsets — and fault plans) run through
//! both paths, and the full obs trace (`TraceMode::Full`) must match
//! event for event, while the serialized behavior report must match byte
//! for byte. The golden snapshot (`tests/golden_report.rs`) stays
//! un-re-blessed on top of this: the descriptor path is the one the golden
//! was captured against.

use integration_tests::short_baseline;
use pmm_core::prelude::*;
use pmm_core::rtdbs::RunReport;
use proptest::prelude::*;
use std::fmt::Write as _;

/// Policies the harness rotates through: the three static allocators, a
/// limited MinMax (different grant shapes), and both PMM variants
/// (feedback-driven reallocations at batch boundaries).
const POLICIES: &[&str] = &[
    "Max",
    "MinMax",
    "MinMax-16",
    "Proportional",
    "PMM",
    "PMM-regime",
];

/// Exact serialization of every behavior field (the golden test's format):
/// floats via `{:?}` so a single bit of drift shows.
fn serialize(report: &RunReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "policy: {}", report.policy);
    let _ = writeln!(out, "served: {}", report.served);
    let _ = writeln!(out, "missed: {}", report.missed);
    for c in &report.classes {
        let _ = writeln!(
            out,
            "class {}: served={} missed={}",
            c.name, c.served, c.missed
        );
    }
    let _ = writeln!(out, "avg_mpl: {:?}", report.avg_mpl);
    let _ = writeln!(out, "cpu_util: {:?}", report.cpu_util);
    let _ = writeln!(out, "disk_util: {:?}", report.disk_util);
    let _ = writeln!(out, "waiting: {:?}", report.timings.waiting);
    let _ = writeln!(out, "execution: {:?}", report.timings.execution);
    let _ = writeln!(out, "response: {:?}", report.timings.response);
    let _ = writeln!(out, "avg_fluctuations: {:?}", report.avg_fluctuations);
    for w in &report.windows {
        let _ = writeln!(
            out,
            "window t={:?}: served={} missed={}",
            w.t_secs, w.served, w.missed
        );
    }
    for p in &report.trace {
        let _ = writeln!(
            out,
            "trace t={:?}: mode={} target_mpl={:?}",
            p.at.as_secs_f64(),
            p.mode,
            p.target_mpl
        );
    }
    let _ = writeln!(out, "miss_ci_half_width: {:?}", report.miss_ci_half_width);
    let _ = writeln!(out, "sim_secs: {:?}", report.sim_secs);
    out
}

/// Run `cfg` through one path. Policies are stateful, so each run gets a
/// fresh instance resolved from the same name.
fn run_path(mut cfg: SimConfig, policy: &str, fastforward: bool) -> RunReport {
    cfg.fastforward = fastforward;
    let policy = bench::make_policy_for(&cfg, policy);
    run_simulation(cfg, policy)
}

/// Assert both paths of `cfg` agree event-for-event and byte-for-byte.
/// `label` identifies the generated case in failure output.
fn assert_paths_agree(cfg: SimConfig, policy: &str, label: &str) {
    let fast = run_path(cfg.clone(), policy, true);
    let slow = run_path(cfg, policy, false);

    // Event-for-event: first divergence, not just a blanket inequality, so
    // a failure says *when* the trajectories split.
    for (i, (f, s)) in fast.obs_trace.iter().zip(slow.obs_trace.iter()).enumerate() {
        assert_eq!(
            f,
            s,
            "[{label}] traces diverge at record {i} (of {} fast / {} slow)",
            fast.obs_trace.len(),
            slow.obs_trace.len()
        );
    }
    assert_eq!(
        fast.obs_trace.len(),
        slow.obs_trace.len(),
        "[{label}] one trace is a strict prefix of the other"
    );

    let (fast_bytes, slow_bytes) = (serialize(&fast), serialize(&slow));
    assert_eq!(
        fast_bytes, slow_bytes,
        "[{label}] serialized reports differ"
    );
}

/// One deterministic spot check per preset family, cheap enough to always
/// run: the baseline cell that the golden snapshot pins.
#[test]
fn baseline_paths_agree() {
    let mut cfg = short_baseline(0.06, 600.0);
    cfg.obs.trace = TraceMode::Full;
    assert_paths_agree(cfg, "PMM", "baseline/PMM");
}

/// Faulted run: degradation, outages, and memory shocks all interrupt
/// operators mid-run, which is exactly where `sync_run` reconciliation
/// could drift from the reference path.
#[test]
fn faulted_paths_agree() {
    let mut cfg = short_baseline(0.06, 300.0);
    cfg.obs.trace = TraceMode::Full;
    cfg.faults = FaultPlan::scaled(0.8);
    assert_paths_agree(cfg, "MinMax", "faulted/MinMax");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The randomized differential: preset, rate, seed, policy, feedback
    /// batch size (moves allocation-interruption offsets), and an optional
    /// fault storm.
    #[test]
    fn fastforward_matches_reference(
        preset in 0u8..5,
        rate in 0.02f64..0.12,
        seed in 0u64..1_000_000,
        policy_idx in 0usize..POLICIES.len(),
        sample_size in 4u32..24,
        fault_intensity in proptest::option::of(0.2f64..1.0),
    ) {
        let secs = 240.0;
        let mut cfg = match preset {
            0 => SimConfig::baseline(rate),
            1 => SimConfig::disk_contention(rate),
            2 => SimConfig::sorts(rate),
            3 => SimConfig::multiclass(rate),
            _ => SimConfig::workload_changes(),
        };
        cfg.duration_secs = secs;
        cfg.window_secs = secs / 4.0;
        cfg.seed = seed;
        cfg.sample_size = sample_size;
        cfg.obs.trace = TraceMode::Full;
        if let Some(intensity) = fault_intensity {
            cfg.faults = FaultPlan::scaled(intensity);
        }
        let policy = POLICIES[policy_idx];
        let label = format!(
            "preset={preset} rate={rate:.3} seed={seed} policy={policy} \
             sample_size={sample_size} faults={fault_intensity:?}"
        );
        assert_paths_agree(cfg, policy, &label);
    }
}
