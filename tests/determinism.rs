//! Bit-level reproducibility: the whole point of a fixed-point clock and
//! labelled RNG streams is that experiments are replayable.

use integration_tests::short_baseline;
use pmm_core::prelude::*;

fn fingerprint(r: &RunReport) -> (u64, u64, String, String) {
    (
        r.served,
        r.missed,
        format!("{:.12}/{:.12}/{:.12}", r.avg_mpl, r.cpu_util, r.disk_util),
        format!(
            "{:.9}/{:.9}/{:.9}",
            r.timings.waiting, r.timings.execution, r.timings.response
        ),
    )
}

#[test]
fn identical_seeds_produce_identical_runs() {
    for policy in ["Max", "MinMax", "PMM"] {
        let make = |_: u32| -> Box<dyn MemoryPolicy> {
            match policy {
                "Max" => Box::new(MaxPolicy),
                "MinMax" => Box::new(pmm_core::pmm::MinMaxPolicy::unlimited()),
                _ => Box::new(Pmm::with_defaults()),
            }
        };
        let a = run_simulation(short_baseline(0.05, 2_000.0), make(0));
        let b = run_simulation(short_baseline(0.05, 2_000.0), make(1));
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "policy {policy} not reproducible"
        );
        // Windows and traces must match point for point, too.
        assert_eq!(a.windows.len(), b.windows.len());
        assert_eq!(a.trace, b.trace);
    }
}

#[test]
fn seed_changes_propagate_everywhere() {
    let a = run_simulation(short_baseline(0.05, 2_000.0), Box::new(MaxPolicy));
    let mut cfg = short_baseline(0.05, 2_000.0);
    cfg.seed ^= 0xDEAD_BEEF;
    let b = run_simulation(cfg, Box::new(MaxPolicy));
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn duration_extension_preserves_prefix_counts() {
    // A longer run serves at least as many queries; the short run is not
    // affected by events beyond its horizon.
    let short = run_simulation(short_baseline(0.05, 1_500.0), Box::new(MaxPolicy));
    let long = run_simulation(short_baseline(0.05, 3_000.0), Box::new(MaxPolicy));
    assert!(long.served > short.served);
}
