//! Property-based tests (proptest) on the core invariants: allocation
//! algorithms, operator I/O accounting, least-squares fits, and the event
//! calendar.

// The deprecated allocating wrappers stay covered until their removal;
// production callers use the `*_allocate_into` forms.
#![allow(deprecated)]

use pmm_core::exec::{Action, ExecConfig, FileRef, HashJoin, Operator};
use pmm_core::pmm::{max_allocate, minmax_allocate, proportional_allocate};
use pmm_core::pmm::{QueryDemand, QueryId};
use pmm_core::simkit::{Calendar, SimTime};
use pmm_core::stats::{LinFit, QuadFit};
use pmm_core::storage::{FileId, IoKind};
use proptest::prelude::*;

fn demand_strategy() -> impl Strategy<Value = QueryDemand> {
    (0u64..64, 0u64..10_000, 1u32..200, 0u32..2_000).prop_map(|(id, dl, min, extra)| {
        QueryDemand {
            id: QueryId(id),
            deadline: SimTime(dl),
            min_mem: min,
            max_mem: min + extra,
            tenant: 0,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn allocators_never_overcommit(
        mut demands in proptest::collection::vec(demand_strategy(), 0..40),
        total in 0u32..20_000,
        limit in proptest::option::of(0u32..30),
    ) {
        // Deduplicate ids (the map-based grant application requires it).
        demands.sort_by_key(|d| d.id);
        demands.dedup_by_key(|d| d.id);
        for grants in [
            max_allocate(&demands, total),
            minmax_allocate(&demands, total, limit),
            proportional_allocate(&demands, total, limit),
        ] {
            let sum: u64 = grants.iter().map(|&(_, p)| p as u64).sum();
            prop_assert!(sum <= total as u64, "overcommitted {sum} > {total}");
            for (id, pages) in &grants {
                let d = demands.iter().find(|d| d.id == *id).expect("real query");
                prop_assert!(*pages >= d.min_mem && *pages <= d.max_mem);
            }
            // No duplicate grants.
            let mut ids: Vec<_> = grants.iter().map(|&(id, _)| id).collect();
            ids.sort();
            ids.dedup();
            prop_assert_eq!(ids.len(), grants.len());
        }
    }

    #[test]
    fn minmax_grants_are_ed_monotone(
        mut demands in proptest::collection::vec(demand_strategy(), 2..30),
        total in 100u32..20_000,
    ) {
        demands.sort_by_key(|d| d.id);
        demands.dedup_by_key(|d| d.id);
        let grants = minmax_allocate(&demands, total, None);
        // In deadline order, the fraction of the maximum granted is
        // non-increasing except at the single boundary query: once some
        // query is below its max, everyone later is at their min.
        let mut sorted = demands.clone();
        sorted.sort_by_key(|d| (d.deadline, d.id));
        let mut seen_partial = false;
        for d in &sorted {
            let Some(&(_, pages)) = grants.iter().find(|&&(id, _)| id == d.id) else {
                break;
            };
            if seen_partial {
                prop_assert_eq!(pages, d.min_mem, "after the boundary only minimums");
            }
            if pages < d.max_mem {
                seen_partial = true;
            }
        }
    }

    #[test]
    fn join_io_conservation(
        r in 10u32..400,
        s_mult in 1u32..8,
        alloc_frac in 0.0f64..1.0,
    ) {
        // For any fixed allocation between min and max: every temp page
        // written is read back exactly once (within block rounding), and
        // the operands are read exactly once.
        let s = r * s_mult;
        let cfg = ExecConfig::default();
        let mut op = HashJoin::new(cfg, FileId::Relation(0), r, FileId::Relation(1), s);
        let span = op.max_memory() - op.min_memory();
        let alloc = op.min_memory() + (span as f64 * alloc_frac) as u32;
        op.set_allocation(alloc);
        let (mut base_r, mut temp_r, mut temp_w) = (0u32, 0u32, 0u32);
        let mut steps = 0u64;
        loop {
            steps += 1;
            prop_assert!(steps < 5_000_000, "runaway operator");
            match op.step() {
                Action::Io(io) => match (io.file, io.kind) {
                    (FileRef::Base(_), IoKind::Read) => base_r += io.pages,
                    (FileRef::Temp(_), IoKind::Read) => temp_r += io.pages,
                    (FileRef::Temp(_), IoKind::Write) => temp_w += io.pages,
                    _ => prop_assert!(false, "unexpected I/O"),
                },
                Action::Finished => break,
                Action::Parked => prop_assert!(false, "parked with memory"),
                _ => {}
            }
        }
        prop_assert_eq!(base_r, r + s, "operands read exactly once");
        let imbalance = (temp_r as i64 - temp_w as i64).unsigned_abs();
        prop_assert!(imbalance <= 12, "spill imbalance {imbalance}: w={temp_w} r={temp_r}");
    }

    #[test]
    fn quadfit_interpolates_three_points(
        xs in proptest::collection::hash_set(-50i32..50, 3),
        ys in proptest::collection::vec(-100f64..100.0, 3),
    ) {
        // Three distinct x values determine the quadratic exactly.
        let xs: Vec<f64> = xs.into_iter().map(f64::from).collect();
        let mut fit = QuadFit::new();
        for (x, y) in xs.iter().zip(&ys) {
            fit.add(*x, *y);
        }
        if let Some(q) = fit.solve() {
            for (x, y) in xs.iter().zip(&ys) {
                prop_assert!((q.eval(*x) - y).abs() < 1e-4 * (1.0 + y.abs()),
                    "interpolation failed at {x}: {} vs {y}", q.eval(*x));
            }
        }
    }

    #[test]
    fn linfit_residuals_sum_to_zero(
        pts in proptest::collection::vec((-100f64..100.0, -100f64..100.0), 1..40),
    ) {
        let mut fit = LinFit::new();
        for &(x, y) in &pts {
            fit.add(x, y);
        }
        let (a, b) = fit.solve().expect("non-empty");
        let residual_sum: f64 = pts.iter().map(|&(x, y)| y - (a + b * x)).sum();
        let scale: f64 = 1.0 + pts.iter().map(|&(_, y)| y.abs()).sum::<f64>();
        prop_assert!(residual_sum.abs() < 1e-6 * scale, "residual sum {residual_sum}");
    }

    #[test]
    fn calendar_pops_in_order(
        times in proptest::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = cal.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }
}
