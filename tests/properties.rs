//! Property-based tests (proptest) on the core invariants: allocation
//! algorithms, operator I/O accounting, least-squares fits, and the event
//! calendar.

// The deprecated allocating wrappers stay covered until their removal;
// production callers use the `*_allocate_into` forms.
#![allow(deprecated)]

use pmm_core::exec::{Action, ExecConfig, FileRef, HashJoin, Operator};
use pmm_core::pmm::{max_allocate, minmax_allocate, proportional_allocate};
use pmm_core::pmm::{
    partitioned_allocate_with_into, DirtySet, Grants, IncrementalPartitioned,
    PartitionScratch, PartitionSpec, PartitionStrategy,
};
use pmm_core::pmm::{QueryDemand, QueryId};
use pmm_core::simkit::{Calendar, SimTime};
use pmm_core::stats::{LinFit, QuadFit};
use pmm_core::storage::{FileId, IoKind};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn demand_strategy() -> impl Strategy<Value = QueryDemand> {
    (0u64..64, 0u64..10_000, 1u32..200, 0u32..2_000).prop_map(|(id, dl, min, extra)| {
        QueryDemand {
            id: QueryId(id),
            deadline: SimTime(dl),
            min_mem: min,
            max_mem: min + extra,
            tenant: 0,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn allocators_never_overcommit(
        mut demands in proptest::collection::vec(demand_strategy(), 0..40),
        total in 0u32..20_000,
        limit in proptest::option::of(0u32..30),
    ) {
        // Deduplicate ids (the map-based grant application requires it).
        demands.sort_by_key(|d| d.id);
        demands.dedup_by_key(|d| d.id);
        for grants in [
            max_allocate(&demands, total),
            minmax_allocate(&demands, total, limit),
            proportional_allocate(&demands, total, limit),
        ] {
            let sum: u64 = grants.iter().map(|&(_, p)| p as u64).sum();
            prop_assert!(sum <= total as u64, "overcommitted {sum} > {total}");
            for (id, pages) in &grants {
                let d = demands.iter().find(|d| d.id == *id).expect("real query");
                prop_assert!(*pages >= d.min_mem && *pages <= d.max_mem);
            }
            // No duplicate grants.
            let mut ids: Vec<_> = grants.iter().map(|&(id, _)| id).collect();
            ids.sort();
            ids.dedup();
            prop_assert_eq!(ids.len(), grants.len());
        }
    }

    #[test]
    fn minmax_grants_are_ed_monotone(
        mut demands in proptest::collection::vec(demand_strategy(), 2..30),
        total in 100u32..20_000,
    ) {
        demands.sort_by_key(|d| d.id);
        demands.dedup_by_key(|d| d.id);
        let grants = minmax_allocate(&demands, total, None);
        // In deadline order, the fraction of the maximum granted is
        // non-increasing except at the single boundary query: once some
        // query is below its max, everyone later is at their min.
        let mut sorted = demands.clone();
        sorted.sort_by_key(|d| (d.deadline, d.id));
        let mut seen_partial = false;
        for d in &sorted {
            let Some(&(_, pages)) = grants.iter().find(|&&(id, _)| id == d.id) else {
                break;
            };
            if seen_partial {
                prop_assert_eq!(pages, d.min_mem, "after the boundary only minimums");
            }
            if pages < d.max_mem {
                seen_partial = true;
            }
        }
    }

    #[test]
    fn join_io_conservation(
        r in 10u32..400,
        s_mult in 1u32..8,
        alloc_frac in 0.0f64..1.0,
    ) {
        // For any fixed allocation between min and max: every temp page
        // written is read back exactly once (within block rounding), and
        // the operands are read exactly once.
        let s = r * s_mult;
        let cfg = ExecConfig::default();
        let mut op = HashJoin::new(cfg, FileId::Relation(0), r, FileId::Relation(1), s);
        let span = op.max_memory() - op.min_memory();
        let alloc = op.min_memory() + (span as f64 * alloc_frac) as u32;
        op.set_allocation(alloc);
        let (mut base_r, mut temp_r, mut temp_w) = (0u32, 0u32, 0u32);
        let mut steps = 0u64;
        loop {
            steps += 1;
            prop_assert!(steps < 5_000_000, "runaway operator");
            match op.step() {
                Action::Io(io) => match (io.file, io.kind) {
                    (FileRef::Base(_), IoKind::Read) => base_r += io.pages,
                    (FileRef::Temp(_), IoKind::Read) => temp_r += io.pages,
                    (FileRef::Temp(_), IoKind::Write) => temp_w += io.pages,
                    _ => prop_assert!(false, "unexpected I/O"),
                },
                Action::Finished => break,
                Action::Parked => prop_assert!(false, "parked with memory"),
                _ => {}
            }
        }
        prop_assert_eq!(base_r, r + s, "operands read exactly once");
        let imbalance = (temp_r as i64 - temp_w as i64).unsigned_abs();
        prop_assert!(imbalance <= 12, "spill imbalance {imbalance}: w={temp_w} r={temp_r}");
    }

    #[test]
    fn quadfit_interpolates_three_points(
        xs in proptest::collection::hash_set(-50i32..50, 3),
        ys in proptest::collection::vec(-100f64..100.0, 3),
    ) {
        // Three distinct x values determine the quadratic exactly.
        let xs: Vec<f64> = xs.into_iter().map(f64::from).collect();
        let mut fit = QuadFit::new();
        for (x, y) in xs.iter().zip(&ys) {
            fit.add(*x, *y);
        }
        if let Some(q) = fit.solve() {
            for (x, y) in xs.iter().zip(&ys) {
                prop_assert!((q.eval(*x) - y).abs() < 1e-4 * (1.0 + y.abs()),
                    "interpolation failed at {x}: {} vs {y}", q.eval(*x));
            }
        }
    }

    #[test]
    fn linfit_residuals_sum_to_zero(
        pts in proptest::collection::vec((-100f64..100.0, -100f64..100.0), 1..40),
    ) {
        let mut fit = LinFit::new();
        for &(x, y) in &pts {
            fit.add(x, y);
        }
        let (a, b) = fit.solve().expect("non-empty");
        let residual_sum: f64 = pts.iter().map(|&(x, y)| y - (a + b * x)).sum();
        let scale: f64 = 1.0 + pts.iter().map(|&(_, y)| y.abs()).sum::<f64>();
        prop_assert!(residual_sum.abs() < 1e-6 * scale, "residual sum {residual_sum}");
    }

    #[test]
    fn calendar_pops_in_order(
        times in proptest::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = cal.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }
}

/// Reference applied-grant map for the equivalence property: run the
/// full-snapshot path over the concatenated groups and record every live
/// query's grant (absent from the output = 0 pages).
fn snapshot_map(
    groups: &[Vec<QueryDemand>],
    partitions: &[PartitionSpec],
    strategies: &[PartitionStrategy],
    total: u32,
) -> BTreeMap<u64, u32> {
    let queries: Vec<QueryDemand> =
        groups.iter().flat_map(|g| g.iter().copied()).collect();
    let mut scratch = PartitionScratch::default();
    let mut out = Grants::new();
    partitioned_allocate_with_into(
        &queries,
        partitions,
        strategies,
        total,
        &mut scratch,
        &mut out,
    );
    let mut map: BTreeMap<u64, u32> = queries.iter().map(|q| (q.id.0, 0)).collect();
    for (id, pages) in out {
        map.insert(id.0, pages);
    }
    map
}

/// SplitMix64 step — the churn script's only randomness source, so every
/// failing case replays from the generated round seeds alone.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    // Each case replays a whole churn history against the O(P) reference,
    // so fewer, fatter cases beat the default count.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole equivalence contract: incremental dirty-set allocation
    /// is bit-for-bit the full-snapshot division, for randomized tenant
    /// counts, tree fan-outs, soft/hard borrow-back mixes, demand churn,
    /// strategy flips, and mid-run memory shocks (total shrinks, which the
    /// incremental path must answer with a full rebuild).
    #[test]
    fn incremental_allocation_equals_snapshot_under_churn(
        nparts in 1usize..48,
        group_size in 1usize..40,
        soft_in_four in 0usize..5,
        quota in 20u32..300,
        rounds in proptest::collection::vec(0u64..1_000_000_000, 6..24),
    ) {
        let partitions: Vec<PartitionSpec> = (0..nparts)
            .map(|i| PartitionSpec { quota, soft: i % 4 < soft_in_four })
            .collect();
        let mut strategies: Vec<PartitionStrategy> = (0..nparts)
            .map(|i| match i % 3 {
                0 => PartitionStrategy::Max,
                1 => PartitionStrategy::MinMax(None),
                _ => PartitionStrategy::MinMax(Some(1 + (i % 5) as u32)),
            })
            .collect();
        let mut inc =
            IncrementalPartitioned::with_group_size(partitions.clone(), group_size);
        let mut groups: Vec<Vec<QueryDemand>> = vec![Vec::new(); nparts];
        let mut dirty = DirtySet::new(nparts);
        let mut out = Grants::new();
        let mut total = (nparts as u32).saturating_mul(quota.max(60));
        let mut inc_map: BTreeMap<u64, u32> = BTreeMap::new();
        let mut next_id = 0u64;
        for (round, &seed) in rounds.iter().enumerate() {
            let mut h = mix(seed ^ ((round as u64) << 32));
            // Churn a handful of partitions: arrivals (more likely, so
            // partitions accumulate contending queries), departures, edits.
            for _ in 0..2 + h % 4 {
                h = mix(h);
                let t = (h % nparts as u64) as usize;
                match (h >> 8) % 4 {
                    0 | 3 => {
                        groups[t].push(QueryDemand {
                            id: QueryId(next_id),
                            deadline: SimTime(50 + h % 900),
                            min_mem: 4 + (h >> 16) as u32 % 40,
                            max_mem: 50 + (h >> 24) as u32 % 400,
                            tenant: t as u32,
                        });
                        next_id += 1;
                    }
                    1 if !groups[t].is_empty() => {
                        let k = (h as usize >> 12) % groups[t].len();
                        let gone = groups[t].swap_remove(k);
                        inc_map.remove(&gone.id.0);
                    }
                    _ if !groups[t].is_empty() => {
                        let k = (h as usize >> 12) % groups[t].len();
                        let q = &mut groups[t][k];
                        q.max_mem = q.min_mem + (h >> 20) as u32 % 500;
                    }
                    _ => continue,
                }
                dirty.mark(t);
            }
            // Occasional strategy flip (a dirty-set obligation).
            if h.is_multiple_of(7) {
                let t = ((h >> 40) % nparts as u64) as usize;
                strategies[t] = match strategies[t] {
                    PartitionStrategy::Max => PartitionStrategy::MinMax(None),
                    PartitionStrategy::MinMax(_) => PartitionStrategy::Max,
                };
                dirty.mark(t);
            }
            // Occasional memory shock: the pool shrinks or recovers, which
            // invalidates every cached borrow-back outcome at once.
            if h.is_multiple_of(5) {
                total = (nparts as u32).saturating_mul(30 + (h >> 33) as u32 % 150);
                dirty.mark_all();
            }
            inc.allocate_dirty_into(&groups, &strategies, total, &dirty, &mut out);
            dirty.clear();
            for &(id, pages) in &out {
                inc_map.insert(id.0, pages);
            }
            let expect = snapshot_map(&groups, &partitions, &strategies, total);
            prop_assert_eq!(
                &inc_map, &expect,
                "divergence at round {} (P={}, B={}, soft {}/4)",
                round, nparts, group_size, soft_in_four
            );
        }
    }
}
