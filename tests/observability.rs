//! The observability subsystem's cross-crate contract: tracing, metrics,
//! and profiling are strictly read-only riders — turning any of them on
//! must not change a single simulated outcome — and the full trace covers
//! the whole query lifecycle the paper's Figure 2 pipeline implies.

use integration_tests::short_baseline;
use pmm_core::obs::{self, TraceEvent, TraceKind};
use pmm_core::prelude::*;

fn fingerprint(r: &RunReport) -> (u64, u64, String, usize, usize) {
    (
        r.served,
        r.missed,
        format!(
            "{:.12}/{:.12}/{:.12}/{:.12}",
            r.avg_mpl, r.cpu_util, r.disk_util, r.avg_fluctuations
        ),
        r.windows.len(),
        r.trace.len(),
    )
}

fn observed(secs: f64, mode: TraceMode) -> RunReport {
    let mut cfg = short_baseline(0.06, secs);
    cfg.obs = ObsConfig {
        trace: mode,
        ring_capacity: 64,
        trace_path: None,
        metrics: true,
        profile: true,
    };
    run_simulation(cfg, Box::new(Pmm::with_defaults()))
}

/// The overhead gate's semantic half: with every observability feature on,
/// the simulation's outcomes are bit-identical to a dark run. (The byte
/// half — the null sink leaving the golden report untouched — is pinned by
/// `golden_report.rs`, which runs with `ObsConfig::default()`.)
#[test]
fn observability_is_behavior_invariant() {
    let dark = run_simulation(
        short_baseline(0.06, 2_000.0),
        Box::new(Pmm::with_defaults()),
    );
    assert!(dark.obs_trace.is_empty() && dark.metrics.is_none());
    let lit = observed(2_000.0, TraceMode::Full);
    assert_eq!(fingerprint(&dark), fingerprint(&lit));
    assert_eq!(dark.trace, lit.trace, "policy decisions unchanged");
    assert!(!lit.obs_trace.is_empty());
    assert!(lit.metrics.is_some());
    assert!(lit.profile.is_some());
}

/// The full trace covers the lifecycle end to end — arrival, admission,
/// grant changes, CPU and I/O bursts, departure, policy decisions, batch
/// boundaries — in chronological order.
#[test]
fn full_trace_covers_query_lifecycle() {
    let r = observed(2_000.0, TraceMode::Full);
    let kinds: u16 = r
        .obs_trace
        .iter()
        .fold(0, |m, rec| m | rec.event.kind().bit());
    for kind in [
        TraceKind::Arrival,
        TraceKind::Admission,
        TraceKind::Grant,
        TraceKind::Cpu,
        TraceKind::Io,
        TraceKind::Departure,
        TraceKind::PolicyDecision,
        TraceKind::Batch,
    ] {
        assert_ne!(kinds & kind.bit(), 0, "missing {kind:?} records");
    }
    for w in r.obs_trace.windows(2) {
        assert!(w[0].at <= w[1].at, "trace must be chronological");
    }
    // Lifecycle counts agree with the report: one arrival record per
    // arrival that entered before the horizon, one departure per served.
    let departures = r
        .obs_trace
        .iter()
        .filter(|rec| matches!(rec.event, TraceEvent::Completed { .. }))
        .count() as u64;
    assert_eq!(departures, r.served);
    let missed = r
        .obs_trace
        .iter()
        .filter(|rec| matches!(rec.event, TraceEvent::Completed { missed: true, .. }))
        .count() as u64;
    assert_eq!(missed, r.missed);
    // The re-routed PMM decision records reproduce the policy trace.
    let decisions: Vec<(SimTime, Option<u32>)> = r
        .obs_trace
        .iter()
        .filter_map(|rec| match rec.event {
            TraceEvent::PolicyDecision { target_mpl, .. } => Some((rec.at, target_mpl)),
            _ => None,
        })
        .collect();
    let expected: Vec<(SimTime, Option<u32>)> =
        r.trace.iter().map(|p| (p.at, p.target_mpl)).collect();
    assert_eq!(decisions, expected);
}

/// Ring mode is a flight recorder: it keeps exactly the most recent
/// records of the equivalent full trace, in order.
#[test]
fn ring_keeps_the_most_recent_records() {
    let full = observed(2_000.0, TraceMode::Full);
    let ring = observed(2_000.0, TraceMode::Ring);
    assert_eq!(ring.obs_trace.len(), 64, "ring holds exactly its capacity");
    let tail = &full.obs_trace[full.obs_trace.len() - 64..];
    assert_eq!(
        obs::render_text(&ring.obs_trace),
        obs::render_text(tail),
        "ring contents must be the full trace's tail"
    );
}

/// The metrics registry agrees with the run report it rode along with, and
/// its windowed counter deltas land on the report's window boundaries.
#[test]
fn metrics_registry_agrees_with_report() {
    let r = observed(2_000.0, TraceMode::Off);
    assert!(r.obs_trace.is_empty(), "metrics do not imply tracing");
    let m = r.metrics.as_ref().expect("metrics collected");
    let counter = |name: &str| {
        m.counters
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("counter {name} registered"))
            .1
    };
    assert_eq!(counter("engine.served"), r.served);
    assert_eq!(counter("engine.missed"), r.missed);
    assert!(counter("engine.arrivals") >= r.served);
    assert!(counter("disk.cache_hits") <= counter("disk.requests"));
    assert_eq!(m.windows.len(), r.windows.len());
    for (mw, rw) in m.windows.iter().zip(&r.windows) {
        assert_eq!(mw.t_secs, rw.t_secs, "metrics windows share boundaries");
    }
    // The response-time histogram counts every served query somewhere.
    let hist = m
        .hists
        .iter()
        .find(|h| h.name == "engine.response_secs")
        .expect("response histogram registered");
    assert_eq!(hist.counts.iter().sum::<u64>(), r.served);
    assert_eq!(hist.counts.len(), hist.bounds.len() + 1);
}

/// The Chrome trace-event export is structurally sound JSON with paired
/// async begin/end events per completed query.
#[test]
fn chrome_export_is_well_formed() {
    let r = observed(1_000.0, TraceMode::Full);
    let json = obs::chrome_trace_json(&r.obs_trace);
    assert!(json.starts_with("{\"traceEvents\": ["));
    assert!(json.trim_end().ends_with('}'));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    let begins = json.matches("\"ph\":\"b\"").count();
    let ends = json.matches("\"ph\":\"e\"").count();
    assert_eq!(ends, r.served as usize, "one async end per departure");
    assert!(begins >= ends, "every span that ended began");
}

/// Self-profiling attributes wall time to every mandated engine section.
#[test]
fn profile_covers_every_section() {
    let r = observed(1_000.0, TraceMode::Off);
    let p = r.profile.as_ref().expect("profiling enabled");
    let names: Vec<&str> = p.sections.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        names,
        ["calendar_pop", "dispatch", "disk_start", "reallocate"],
        "fixed section order"
    );
    for s in &p.sections {
        assert!(s.calls > 0, "section {} never sampled", s.name);
        assert!(s.wall_secs >= 0.0);
    }
    let off = run_simulation(
        short_baseline(0.06, 1_000.0),
        Box::new(Pmm::with_defaults()),
    );
    assert!(off.profile.is_none(), "profiling is opt-in");
}
