//! Shared fixtures for the cross-crate integration tests.

use pmm_core::prelude::*;

/// A short baseline configuration sized for test runtimes: same model as
/// the paper's Section 5.1 setup, shorter horizon.
pub fn short_baseline(rate: f64, secs: f64) -> SimConfig {
    let mut cfg = SimConfig::baseline(rate);
    cfg.duration_secs = secs;
    cfg.window_secs = secs / 4.0;
    cfg
}
