//! The fault layer's cross-crate contracts:
//!
//! 1. **Determinism under faults**: a fault storm is part of the simulated
//!    world, so the merged `faults` figure is byte-identical for any
//!    `--threads` value — same bar the healthy figures meet.
//! 2. **Dark path**: a `FaultPlan` that never fires inside the horizon is
//!    indistinguishable from no plan at all — not one event moves.
//! 3. **Crash tolerance**: a replication that panics is quarantined with
//!    its provenance while every other cell completes, and the partial
//!    result is itself deterministic.

use bench::driver::{quarantine_json, run_figure, DriverConfig};
use bench::make_policy_for;
use integration_tests::short_baseline;
use pmm_core::prelude::*;

#[test]
fn faults_figure_is_thread_count_invariant() {
    let base = DriverConfig {
        seeds: 2,
        threads: 1,
        secs: 400.0,
        master_seed: 1994,
        ..DriverConfig::default()
    };
    let serial = run_figure("faults", base.clone()).expect("serial run");
    let parallel =
        run_figure("faults", DriverConfig { threads: 4, ..base }).expect("parallel run");
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "BENCH_faults.json must be byte-identical across thread counts"
    );
    // The sweep exercises both degradation modes at a fault-free control
    // and a full-intensity storm; nothing quarantines on a healthy plan.
    assert!(
        serial.quarantine.is_empty(),
        "healthy sweep quarantines nothing"
    );
    assert!(serial.cells.iter().all(|c| c.replications == 2));
    assert!(serial.cells.iter().any(|c| c.policy.starts_with("abort/")));
    assert!(serial
        .cells
        .iter()
        .any(|c| c.policy.starts_with("requeue/")));
}

/// A plan whose every window opens after the horizon closes must leave the
/// run untouched: scheduling is gated on `at < end`, so an inert plan
/// consumes no events and no randomness.
#[test]
fn out_of_horizon_fault_plan_is_inert() {
    let secs = 1_500.0;
    let dark = run_simulation(short_baseline(0.06, secs), Box::new(Pmm::with_defaults()));
    let mut cfg = short_baseline(0.06, secs);
    cfg.faults = FaultPlan {
        events: vec![
            FaultSpec::DiskOutage {
                disk: 0,
                start_secs: secs + 100.0,
                end_secs: secs + 200.0,
            },
            FaultSpec::MemoryShock {
                start_secs: secs + 50.0,
                end_secs: secs + 60.0,
                fraction: 0.5,
            },
        ],
        ..FaultPlan::default()
    };
    let inert = run_simulation(cfg, Box::new(Pmm::with_defaults()));
    assert_eq!(dark.served, inert.served);
    assert_eq!(dark.missed, inert.missed);
    assert_eq!(dark.events, inert.events, "not one event may move");
    assert_eq!(
        format!(
            "{:.12}/{:.12}/{:.12}/{:.12}",
            dark.avg_mpl, dark.cpu_util, dark.disk_util, dark.avg_fluctuations
        ),
        format!(
            "{:.12}/{:.12}/{:.12}/{:.12}",
            inert.avg_mpl, inert.cpu_util, inert.disk_util, inert.avg_fluctuations
        ),
    );
    assert_eq!(dark.windows.len(), inert.windows.len());
}

/// End-to-end equivalence of the incremental reallocation path under the
/// storm machinery: a multi-tenant `scale` run through a mid-run memory
/// shock and a disk outage must produce the very same report whether the
/// engine drives the dirty-set path (`Partitioned-soft`) or the pinned
/// full-snapshot reference (`snapshot/Partitioned-soft`). The shock is the
/// hard case — total memory moves under the allocator, which must answer
/// with a rebuild that is the reference algorithm verbatim.
#[test]
fn incremental_reallocation_survives_storms_bit_for_bit() {
    let mut cfg = SimConfig::scale(48);
    cfg.duration_secs = 600.0;
    cfg.window_secs = 150.0;
    cfg.faults = FaultPlan {
        events: vec![
            FaultSpec::MemoryShock {
                start_secs: 120.0,
                end_secs: 260.0,
                fraction: 0.5,
            },
            FaultSpec::DiskOutage {
                disk: 1,
                start_secs: 300.0,
                end_secs: 380.0,
            },
        ],
        ..FaultPlan::default()
    };
    let inc = run_simulation(cfg.clone(), make_policy_for(&cfg, "Partitioned-soft"));
    let snap = run_simulation(
        cfg.clone(),
        make_policy_for(&cfg, "snapshot/Partitioned-soft"),
    );
    assert_eq!((inc.served, inc.missed), (snap.served, snap.missed));
    assert_eq!(inc.events, snap.events, "not one event may move");
    for (a, b) in [
        (inc.avg_mpl, snap.avg_mpl),
        (inc.cpu_util, snap.cpu_util),
        (inc.disk_util, snap.disk_util),
        (inc.avg_fluctuations, snap.avg_fluctuations),
    ] {
        assert_eq!(a.to_bits(), b.to_bits(), "aggregate drifted: {a} vs {b}");
    }
    assert_eq!(inc.windows.len(), snap.windows.len());
    for (w, v) in inc.windows.iter().zip(&snap.windows) {
        assert_eq!((w.served, w.missed), (v.served, v.missed));
    }
    assert_eq!(inc.tenants.len(), 48);
    for (t, u) in inc.tenants.iter().zip(&snap.tenants) {
        assert_eq!((t.served, t.missed), (u.served, u.missed), "{}", t.name);
        assert_eq!(t.avg_mpl.to_bits(), u.avg_mpl.to_bits(), "{}", t.name);
        assert_eq!(
            t.quota_utilization.to_bits(),
            u.quota_utilization.to_bits(),
            "{}",
            t.name
        );
        assert_eq!(
            t.borrowed_pages.to_bits(),
            u.borrowed_pages.to_bits(),
            "{}",
            t.name
        );
    }
}

#[test]
fn panicking_replication_is_quarantined_not_fatal() {
    let cfg = DriverConfig {
        seeds: 2,
        threads: 2,
        secs: 200.0,
        master_seed: 7,
        ..DriverConfig::default()
    };
    let r = run_figure("crashtest", cfg.clone()).expect("sweep survives");
    // The middle cell runs the deliberately panicking policy: both of its
    // replications quarantine, in replication order.
    assert_eq!(r.quarantine.len(), 2, "both panic-cell replications caught");
    for (rep, q) in r.quarantine.iter().enumerate() {
        assert_eq!(q.cell, 1);
        assert_eq!(q.policy, "panic");
        assert_eq!(q.rep, rep as u64);
        assert!(
            q.message.contains("deliberate crashtest panic"),
            "panic message surfaced: {}",
            q.message
        );
    }
    // The healthy neighbours complete with full replication counts.
    assert_eq!(r.cells.len(), 3);
    assert_eq!(r.cells[0].replications, 2);
    assert!(r.cells[0].served > 0);
    assert_eq!(r.cells[1].replications, 0, "panicked cell keeps no reports");
    assert_eq!(r.cells[2].replications, 2);
    assert!(r.cells[2].served > 0);
    // The quarantine report names the failed unit and its seed, and the
    // partial result is deterministic: a rerun reproduces it bit for bit.
    let qjson = quarantine_json(&r);
    assert!(qjson.contains("\"kind\": \"quarantine\""));
    assert!(qjson.contains("\"policy\":\"panic\""));
    assert!(qjson.contains(&format!("\"seed\":{}", r.quarantine[0].seed)));
    let again = run_figure("crashtest", cfg).expect("rerun survives");
    assert_eq!(r.to_json(), again.to_json());
    assert_eq!(qjson, quarantine_json(&again));
}
