//! Golden determinism pin: one full `RunReport` per policy, serialized
//! byte-for-byte and compared against a checked-in snapshot.
//!
//! This is the behavior bar for hot-path work: an optimization PR must not
//! move a single simulated event, so the report it produces — served/missed
//! counts, per-class outcomes, MPL, utilizations, timings, windows, PMM
//! trace — must match the snapshot captured *before* the refactor, bit for
//! bit. (`RunReport::events` is deliberately excluded: it is a perf counter,
//! and optimizations may legitimately dispatch fewer dead events.)
//!
//! To re-bless after an *intentional* behavior change:
//! `UPDATE_GOLDEN=1 cargo test -q -p integration-tests --test golden_report`

use pmm_core::prelude::*;
use pmm_core::rtdbs::RunReport;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The pinned configuration: a Figure 3-style baseline cell, shortened so
/// the test stays fast but long enough to cross several feedback batches,
/// windows, and (under PMM) at least one strategy decision.
fn golden_cfg() -> SimConfig {
    let mut cfg = SimConfig::baseline(0.06);
    cfg.duration_secs = 2_500.0;
    cfg.window_secs = 500.0;
    cfg.seed = 1994;
    cfg
}

/// Deterministic, exact serialization of every behavior field. Floats use
/// `{:?}` (shortest round-trip), so any bit-level difference shows.
fn serialize(report: &RunReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "policy: {}", report.policy);
    let _ = writeln!(out, "served: {}", report.served);
    let _ = writeln!(out, "missed: {}", report.missed);
    for c in &report.classes {
        let _ = writeln!(
            out,
            "class {}: served={} missed={}",
            c.name, c.served, c.missed
        );
    }
    let _ = writeln!(out, "avg_mpl: {:?}", report.avg_mpl);
    let _ = writeln!(out, "cpu_util: {:?}", report.cpu_util);
    let _ = writeln!(out, "disk_util: {:?}", report.disk_util);
    let _ = writeln!(out, "waiting: {:?}", report.timings.waiting);
    let _ = writeln!(out, "execution: {:?}", report.timings.execution);
    let _ = writeln!(out, "response: {:?}", report.timings.response);
    let _ = writeln!(out, "avg_fluctuations: {:?}", report.avg_fluctuations);
    for w in &report.windows {
        let _ = writeln!(
            out,
            "window t={:?}: served={} missed={}",
            w.t_secs, w.served, w.missed
        );
    }
    for p in &report.trace {
        let _ = writeln!(
            out,
            "trace t={:?}: mode={} target_mpl={:?}",
            p.at.as_secs_f64(),
            p.mode,
            p.target_mpl
        );
    }
    let _ = writeln!(out, "miss_ci_half_width: {:?}", report.miss_ci_half_width);
    let _ = writeln!(out, "sim_secs: {:?}", report.sim_secs);
    out
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join("runreport_fig3.txt")
}

#[test]
fn run_report_matches_golden_snapshot() {
    let mut actual = String::new();
    for policy in ["Max", "MinMax", "PMM"] {
        let boxed: Box<dyn MemoryPolicy> = match policy {
            "Max" => Box::new(MaxPolicy),
            "MinMax" => Box::new(MinMaxPolicy::unlimited()),
            _ => Box::new(Pmm::with_defaults()),
        };
        let report = run_simulation(golden_cfg(), boxed);
        let _ = writeln!(actual, "==== {policy} ====");
        actual.push_str(&serialize(&report));
    }
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write golden snapshot");
        eprintln!("golden snapshot updated at {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "RunReport deviates from the golden snapshot — the simulation moved \
         an event. If the change is intentional, re-bless with UPDATE_GOLDEN=1.\n\
         --- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}
